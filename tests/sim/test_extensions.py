"""Tests for the optional extensions: memory-side L2, scheduler policy."""

import dataclasses

from repro.sim.config import CoreConfig, DramConfig, baseline_config
from repro.sim.dram import DramChannel
from repro.sim.gpu import GpuSimulator
from repro.sim.isa import compute, load
from repro.sim.memory_request import MemoryRequest
from repro.trace.benchmarks import get_benchmark
from repro.trace.tracegen import generate_workload


def l2_config(size=64 * 1024, **overrides):
    return DramConfig(pipeline_latency=100, l2_size_bytes=size, **overrides)


def drain(channel, until=100_000):
    completed, cycle = [], 0
    while not channel.idle and cycle < until:
        completed.extend(channel.step(cycle))
        nxt = channel.next_event_cycle(cycle)
        cycle = max(cycle + 1, nxt if nxt is not None else cycle + 1)
    return completed


class TestMemorySideL2:
    def test_miss_then_hit(self):
        ch = DramChannel(0, l2_config())
        ch.arrive(MemoryRequest(0, 0, 0, 0x10, False, 0), 0, 0, 0)
        assert len(drain(ch)) == 1
        assert ch.l2_misses == 1
        # The refetch of the same line hits the L2 and skips the banks.
        ch.arrive(MemoryRequest(0, 1, 0, 0x10, False, 1000), 0, 0, 1000)
        done = drain(ch)
        assert len(done) == 1
        assert ch.l2_hits == 1
        assert ch.lines_transferred == 1  # no second DRAM transfer

    def test_l2_hit_latency_short(self):
        cfg = l2_config()
        ch = DramChannel(0, cfg)
        ch.arrive(MemoryRequest(0, 0, 0, 0x10, False, 0), 0, 0, 0)
        drain(ch)
        ch.arrive(MemoryRequest(0, 1, 0, 0x10, False, 2000), 0, 0, 2000)
        cycle = 2000
        done = []
        while not done and cycle < 3000:
            done = ch.step(cycle)
            cycle += 1
        assert cycle - 2000 <= cfg.l2_latency + 2

    def test_disabled_by_default(self):
        ch = DramChannel(0, DramConfig())
        assert ch.l2 is None

    def test_end_to_end_l2_reduces_refetch_time(self):
        """Two waves touching the same lines: the L2 serves the second."""
        spec = get_benchmark("cell", scale=0.25)
        wl = generate_workload(spec)
        base_cfg = baseline_config()
        l2_cfg = base_cfg.replace(
            dram=dataclasses.replace(base_cfg.dram, l2_size_bytes=256 * 1024)
        )
        sim = GpuSimulator(l2_cfg)
        sim.load_workload(wl.blocks, wl.max_blocks_per_core)
        sim.run()
        # cell touches each line once, so hits come only from store/load
        # overlap; the plumbing must at least count probes.
        assert sim.dram.total_l2_hits + sim.dram.total_l2_misses > 0


class TestSchedulerPolicy:
    def _run(self, scheduler):
        cfg = baseline_config(core=CoreConfig(scheduler=scheduler))
        blocks = [
            (0, [
                (0, [load(0x10, 0, [0]), compute(0x20, wait_tokens=[0]),
                     compute(0x24), compute(0x28)]),
                (1, [load(0x10, 0, [4096]), compute(0x20, wait_tokens=[0]),
                     compute(0x24), compute(0x28)]),
            ])
        ]
        sim = GpuSimulator(cfg)
        sim.load_workload(blocks, 1)
        return sim.run()

    def test_both_policies_complete(self):
        rr = self._run("rr")
        oldest = self._run("oldest")
        assert rr.stats.instructions == oldest.stats.instructions == 8

    def test_policies_are_deterministic(self):
        assert self._run("oldest").cycles == self._run("oldest").cycles
