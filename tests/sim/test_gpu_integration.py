"""Integration tests: whole-GPU simulations on small workloads."""

import pytest

from repro.core.mt_hwp import MtHwpPrefetcher
from repro.core.stride_pc import StridePcPrefetcher
from repro.core.throttle import ThrottleConfig
from repro.sim.config import CoreConfig, baseline_config
from repro.sim.gpu import GpuSimulator, run_workload
from repro.trace.benchmarks import get_benchmark
from repro.trace.kernels import Compute, KernelSpec, Load, Store
from repro.trace.swp import MT_SWP
from repro.trace.tracegen import generate_workload


def small_spec(loop_iters=4, compute=4, num_blocks=14, warps_per_block=2):
    return KernelSpec(
        name="small",
        suite="test",
        btype="stride",
        threads_per_block=warps_per_block * 32,
        num_blocks=num_blocks,
        body=(
            Load("a", "A", lane_stride=4, iter_stride=4096),
            Compute(1, consumes=("a",)),
            Compute(compute),
        ),
        loop_iters=loop_iters,
        stride_delinquent=("a",),
    )


def run(spec=None, config=None, factory=None, swp=None):
    spec = spec or small_spec()
    wl = generate_workload(spec, swp=swp) if swp else generate_workload(spec)
    sim = GpuSimulator(config or baseline_config(), factory)
    sim.load_workload(wl.blocks, wl.max_blocks_per_core)
    return sim.run()


class TestBasicExecution:
    def test_all_instructions_retire(self):
        spec = small_spec()
        wl = generate_workload(spec)
        result = run(spec)
        assert result.stats.instructions == wl.total_instructions()

    def test_perfect_memory_cpi_is_issue_bound(self):
        result = run(config=baseline_config(perfect_memory=True))
        assert result.cpi == pytest.approx(4.0, rel=0.15)

    def test_memory_latency_raises_cpi(self):
        pmem = run(config=baseline_config(perfect_memory=True))
        base = run()
        assert base.cycles > pmem.cycles
        assert base.stats.avg_demand_latency > 100

    def test_deterministic(self):
        a = run()
        b = run()
        assert a.cycles == b.cycles
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_block_dispatch_respects_occupancy(self):
        spec = small_spec(num_blocks=28)
        wl = generate_workload(spec, max_blocks_per_core=None)
        sim = GpuSimulator(baseline_config())
        sim.load_workload(wl.blocks, 1)
        assert max(c.resident_blocks for c in sim.cores) <= 1
        sim.run()

    def test_every_warp_finishes(self):
        spec = small_spec(num_blocks=30)  # uneven across 14 cores
        wl = generate_workload(spec)
        sim = GpuSimulator(baseline_config())
        sim.load_workload(wl.blocks, wl.max_blocks_per_core)
        sim.run()
        assert all(core.drained for core in sim.cores)

    def test_consecutive_blocks_same_core(self):
        """Partitioned dispatch keeps consecutive blocks core-affine."""
        spec = small_spec(num_blocks=28)
        wl = generate_workload(spec)
        sim = GpuSimulator(baseline_config())
        sim.load_workload(wl.blocks, wl.max_blocks_per_core)
        first_core_blocks = {w.block_id for w in sim.cores[0].warps}
        assert first_core_blocks == {0, 1}


class TestPrefetchingEndToEnd:
    def test_hardware_prefetching_helps_latency_bound_kernel(self):
        spec = small_spec(loop_iters=8, compute=4, num_blocks=14)
        base = run(spec)
        pref = run(spec, factory=lambda cid: StridePcPrefetcher(warp_aware=True))
        assert pref.cycles < base.cycles
        assert pref.stats.useful_prefetches > 0

    def test_mt_hwp_trains_and_promotes(self):
        # 42 blocks over 14 cores -> 3 resident blocks (6 warps) per core,
        # enough agreeing PWS entries to cross the promotion threshold.
        spec = small_spec(loop_iters=8, num_blocks=42)
        prefs = []

        def factory(cid):
            p = MtHwpPrefetcher()
            prefs.append(p)
            return p

        run(spec, factory=factory)
        assert sum(p.promotions for p in prefs) > 0
        assert sum(p.gs_hits for p in prefs) > 0

    def test_software_prefetching_generates_requests(self):
        spec = small_spec(loop_iters=8, num_blocks=14)
        result = run(spec, swp=MT_SWP)
        assert result.stats.prefetch_instructions > 0
        assert result.stats.prefetch_requests_issued > 0
        assert result.stats.useful_prefetches > 0

    def test_prefetch_accuracy_high_for_regular_pattern(self):
        """Paper Section I: accuracy is easily ~100% on regular kernels."""
        spec = small_spec(loop_iters=8, num_blocks=14)
        result = run(spec, swp=MT_SWP)
        assert result.stats.prefetch_accuracy > 0.7

    def test_throttling_engine_updates_periodically(self):
        spec = small_spec(loop_iters=8, num_blocks=14)
        cfg = baseline_config(throttle=ThrottleConfig(enabled=True, period=500))
        wl = generate_workload(spec, swp=MT_SWP)
        sim = GpuSimulator(cfg)
        sim.load_workload(wl.blocks, wl.max_blocks_per_core)
        sim.run()
        assert all(core.throttle.updates > 0 for core in sim.cores)

    def test_run_workload_helper(self):
        wl = generate_workload(small_spec())
        result = run_workload(baseline_config(), wl.blocks, wl.max_blocks_per_core)
        assert result.cycles > 0


class TestScalingKnobs:
    def test_more_cores_run_faster(self):
        spec = small_spec(num_blocks=40)
        slow = run(spec, config=baseline_config(num_cores=8))
        fast = run(spec, config=baseline_config(num_cores=16))
        assert fast.cycles < slow.cycles

    def test_mrq_size_bounds_outstanding(self):
        spec = small_spec(num_blocks=28, warps_per_block=8)
        tiny = run(spec, config=baseline_config(core=CoreConfig(mrq_size=4)))
        large = run(spec, config=baseline_config(core=CoreConfig(mrq_size=512)))
        assert large.cycles <= tiny.cycles

    def test_real_benchmark_smoke(self):
        result = run(get_benchmark("cell", scale=0.25))
        assert result.cycles > 0
        assert result.cpi > 4.0
