"""Unit tests for the injection-limited, fixed-latency interconnect."""

from repro.sim.config import InterconnectConfig
from repro.sim.interconnect import Interconnect
from repro.sim.mrq import MemoryRequestQueue
from repro.sim.warp import Warp


def make_mrqs(n=14, size=64):
    return [MemoryRequestQueue(i, size) for i in range(n)]


def fill_demands(mrq, count, base=0):
    warp = Warp(0, 0, [])
    for i in range(count):
        mrq.access_demand(base + i * 64, warp, i, 0x10, 0, 0)


def test_fixed_latency_delivery():
    icnt = Interconnect(InterconnectConfig(), 14)
    mrqs = make_mrqs()
    fill_demands(mrqs[0], 1)
    icnt.inject_requests(1, mrqs)
    assert not icnt.pop_memory_arrivals(20)
    arrivals = icnt.pop_memory_arrivals(21)
    assert len(arrivals) == 1


def test_injection_bandwidth_limit():
    """At most num_cores/2 requests per cycle enter the network."""
    icnt = Interconnect(InterconnectConfig(), 14)
    assert icnt.slots_per_cycle == 7
    mrqs = make_mrqs()
    for mrq in mrqs:
        fill_demands(mrq, 2, base=mrq.core_id * 1 << 20)
    icnt.inject_requests(1, mrqs)
    assert icnt.total_injected == 7
    icnt.inject_requests(2, mrqs)
    assert icnt.total_injected == 14


def test_credit_accumulates_over_skipped_cycles():
    icnt = Interconnect(InterconnectConfig(), 14)
    mrqs = make_mrqs()
    icnt.inject_requests(1, mrqs)  # nothing to send; credit capped
    for mrq in mrqs:
        fill_demands(mrq, 2, base=mrq.core_id * 1 << 20)
    # After a long skip the credit is bounded (no unbounded banking) but
    # scales with the elapsed cycles in one batch.
    icnt.inject_requests(100, mrqs)
    assert icnt.total_injected == 28  # everything drained


def test_round_robin_fairness():
    icnt = Interconnect(InterconnectConfig(), 4)
    mrqs = make_mrqs(4)
    for mrq in mrqs:
        fill_demands(mrq, 3, base=mrq.core_id * 1 << 20)
    icnt.inject_requests(1, mrqs)  # 2 slots for 4 cores
    sent_1 = [m.total_requests - len(m._send_queue) for m in mrqs]
    icnt.inject_requests(2, mrqs)
    icnt.inject_requests(3, mrqs)
    # After three cycles (6 slots), no core should be more than 2 ahead.
    remaining = [len(m._send_queue) for m in mrqs]
    assert max(remaining) - min(remaining) <= 2


def test_response_path():
    icnt = Interconnect(InterconnectConfig(), 14)
    mrqs = make_mrqs()
    fill_demands(mrqs[3], 1)
    request = mrqs[3].pop_sendable(0)
    icnt.send_response(100, 3, request)
    assert not icnt.pop_core_arrivals(119)
    arrivals = icnt.pop_core_arrivals(120)
    assert arrivals == [(3, request)]


def test_next_event_and_idle():
    icnt = Interconnect(InterconnectConfig(), 14)
    assert icnt.idle
    assert icnt.next_event_cycle() is None
    mrqs = make_mrqs()
    fill_demands(mrqs[0], 1)
    icnt.inject_requests(5, mrqs)
    assert not icnt.idle
    assert icnt.next_event_cycle() == 25
    icnt.pop_memory_arrivals(25)
    assert icnt.idle
