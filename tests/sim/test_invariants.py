"""Tests for the simulation integrity layer: invariant checking, the
structured failure taxonomy, and diagnostic snapshots.

The invariant checker must (a) stay silent on healthy runs, (b) catch
injected accounting corruption, (c) name the wedged component on a
deadlock, and (d) produce failure artifacts — exceptions that survive
pickling across a process pool, snapshots that serialize to JSON, and
failure reports that round-trip through disk.
"""

import json
import pickle

import pytest

from repro.core.stride_rpt import StrideRptPrefetcher
from repro.sim.config import baseline_config
from repro.sim.errors import (
    FAILURE_REPORT_SCHEMA,
    CycleLimitExceeded,
    DeadlockError,
    InvariantViolation,
    SimulationError,
    load_failure_report,
    write_failure_report,
)
from repro.sim.gpu import GpuSimulator
from repro.sim.invariants import (
    INVARIANTS_ENV,
    InvariantChecker,
    diagnose_no_progress,
    invariants_enabled_from_env,
    snapshot_simulator,
)
from repro.sim.isa import compute, load, store


def memory_block(block_id, warps=2, lines_apart=64):
    """A block of warps issuing dependent loads (plus a store) — enough
    traffic to exercise every ledger the checker audits."""
    specs = []
    for w in range(warps):
        base = (block_id * warps + w) * lines_apart * 4
        stream = [
            load(0x10, 0, [base]),
            compute(0x20, wait_tokens=[0]),
            load(0x30, 1, [base + 4096]),
            store(0x40, [base + 8192]),
            compute(0x50, wait_tokens=[1]),
        ]
        specs.append((block_id * warps + w, stream))
    return (block_id, specs)


class TestEnvOptIn:
    def test_env_values(self, monkeypatch):
        monkeypatch.delenv(INVARIANTS_ENV, raising=False)
        assert not invariants_enabled_from_env()
        monkeypatch.setenv(INVARIANTS_ENV, "0")
        assert not invariants_enabled_from_env()
        monkeypatch.setenv(INVARIANTS_ENV, "")
        assert not invariants_enabled_from_env()
        monkeypatch.setenv(INVARIANTS_ENV, "1")
        assert invariants_enabled_from_env()

    def test_simulator_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(INVARIANTS_ENV, "1")
        assert GpuSimulator(baseline_config()).invariants is not None
        monkeypatch.setenv(INVARIANTS_ENV, "0")
        assert GpuSimulator(baseline_config()).invariants is None

    def test_explicit_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(INVARIANTS_ENV, "1")
        assert GpuSimulator(baseline_config(), invariants=False).invariants is None
        monkeypatch.delenv(INVARIANTS_ENV, raising=False)
        assert GpuSimulator(baseline_config(), invariants=True).invariants is not None


class TestHealthyRuns:
    def test_clean_run_passes_every_check(self):
        cfg = baseline_config(num_cores=4)
        sim = GpuSimulator(
            cfg,
            lambda core_id: StrideRptPrefetcher(distance=2, degree=2),
            invariants=True,
        )
        # Tight interval so many mid-run passes actually execute.
        sim.invariants = InvariantChecker(sim, interval=200)
        sim.load_workload([memory_block(b) for b in range(8)], 2)
        result = sim.run()
        assert result.stats.instructions > 0
        assert not result.truncated
        assert sim.invariants.checks > 1
        assert sim.invariants.violations_found == 0

    def test_snapshot_is_json_serializable(self):
        sim = GpuSimulator(baseline_config(num_cores=2), invariants=True)
        sim.load_workload([memory_block(0)], 1)
        sim.run()
        snapshot = snapshot_simulator(sim, sim.cycle)
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["cycle"] == sim.cycle
        assert len(round_tripped["cores"]) == 2
        assert round_tripped["stats"]["instructions"] > 0


class TestInjectedCorruption:
    def test_tampered_warp_ledger_is_caught(self):
        sim = GpuSimulator(baseline_config(num_cores=2), invariants=True)
        sim.load_workload([memory_block(0)], 1)
        sim.cores[0].warps_assigned += 1  # inject accounting corruption
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run()
        exc = excinfo.value
        assert exc.kind == "invariant"
        assert any("warp ledger" in v for v in exc.violations)
        assert exc.snapshot is not None
        json.dumps(exc.snapshot)  # snapshot must be serializable

    def test_tampered_mrq_ledger_is_caught(self):
        sim = GpuSimulator(baseline_config(num_cores=2), invariants=True)
        sim.invariants = InvariantChecker(sim, interval=100)
        sim.load_workload([memory_block(0)], 1)
        sim.cores[0].mrq.total_completed += 3
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run()
        assert any("MRQ entry ledger" in v for v in excinfo.value.violations)

    def test_tampered_prefetch_ledger_is_caught(self):
        sim = GpuSimulator(
            baseline_config(num_cores=2),
            lambda core_id: StrideRptPrefetcher(distance=1, degree=1),
            invariants=True,
        )
        sim.load_workload([memory_block(0)], 1)
        sim.cores[0].prefetch_generated += 5
        with pytest.raises(InvariantViolation) as excinfo:
            sim.run()
        assert any("prefetch pipeline ledger" in v
                   for v in excinfo.value.violations)


class TestDeadlockDiagnosis:
    def test_unsatisfiable_dependency_names_the_warp(self):
        # Token 7 is never produced by any load: the warp wedges forever.
        sim = GpuSimulator(baseline_config(num_cores=1))
        sim.load_workload([(0, [(0, [compute(0x20, wait_tokens=[7])])])], 1)
        with pytest.raises(DeadlockError) as excinfo:
            sim.run()
        exc = excinfo.value
        assert exc.kind == "deadlock"
        assert "unsatisfiable dependency" in str(exc)
        assert "warp 0" in str(exc)
        assert exc.snapshot is not None and exc.snapshot["cycle"] >= 0

    def test_watchdog_fires_after_quiet_window(self):
        sim = GpuSimulator(baseline_config(num_cores=1))
        sim.load_workload([(0, [(0, [compute(0x20, wait_tokens=[7])])])], 1)
        checker = InvariantChecker(sim, interval=1, watchdog_window=10)
        checker._watchdog(0)  # records the activity baseline
        with pytest.raises(DeadlockError) as excinfo:
            checker._watchdog(50)  # quiet for 50 > 10 cycles
        assert "no forward progress" in str(excinfo.value)

    def test_diagnose_reports_idle_machine_inconsistency(self):
        sim = GpuSimulator(baseline_config(num_cores=1))
        sim.load_workload([], 1)
        text = diagnose_no_progress(sim, 0)
        assert "inconsistent retirement state" in text


class TestTruncation:
    def make_slow_sim(self, **cfg_overrides):
        cfg = baseline_config(max_cycles=50, **cfg_overrides)
        sim = GpuSimulator(cfg)
        sim.load_workload(
            [(0, [(0, [load(0x10, 0, [0]), compute(0x20, wait_tokens=[0])])])],
            1,
        )
        return sim

    def test_truncated_run_is_flagged_not_silent(self):
        result = self.make_slow_sim().run()
        assert result.truncated
        assert result.stats.truncated
        assert result.stats.as_dict()["truncated"] is True

    def test_strict_run_raises_cycle_limit_exceeded(self):
        with pytest.raises(CycleLimitExceeded) as excinfo:
            self.make_slow_sim().run(strict=True)
        exc = excinfo.value
        assert exc.kind == "truncated"
        assert "max_cycles=50" in str(exc)
        assert exc.snapshot["cycle"] >= 50

    def test_completed_run_is_not_flagged(self):
        sim = GpuSimulator(baseline_config())
        sim.load_workload([(0, [(0, [compute()])])], 1)
        assert not sim.run(strict=True).truncated


class TestErrorTaxonomy:
    def sample_errors(self):
        snapshot = {"cycle": 7, "cores": []}
        return [
            SimulationError("base failure", snapshot=snapshot),
            DeadlockError("wedged", snapshot=snapshot),
            CycleLimitExceeded("out of cycles", snapshot=snapshot),
            InvariantViolation(
                "ledger imbalance",
                snapshot=snapshot,
                violations=["core 0 warp ledger: assigned 3 != retired 1 + 1"],
            ),
        ]

    def test_kinds(self):
        kinds = [e.kind for e in self.sample_errors()]
        assert kinds == ["simulation-error", "deadlock", "truncated", "invariant"]

    def test_errors_survive_pickling(self):
        """Pool workers raise these across a pipe; everything diagnostic
        must survive the pickle round trip."""
        for exc in self.sample_errors():
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert str(clone) == str(exc)
            assert clone.snapshot == exc.snapshot
            assert clone.kind == exc.kind
            if isinstance(exc, InvariantViolation):
                assert clone.violations == exc.violations

    def test_report_round_trip(self, tmp_path):
        [_, _, _, violation] = self.sample_errors()
        report = violation.to_report()
        assert report["schema"] == FAILURE_REPORT_SCHEMA
        assert report["kind"] == "invariant"
        assert report["violations"] == violation.violations
        path = write_failure_report(tmp_path / "failure.json", report)
        assert load_failure_report(path) == report

    def test_simulation_errors_are_runtime_errors(self):
        # Callers that predate the taxonomy catch RuntimeError; the new
        # hierarchy must stay inside it.
        for exc in self.sample_errors():
            assert isinstance(exc, RuntimeError)
            assert isinstance(exc, SimulationError)
