"""Tests for memory request objects and their merge semantics."""

from repro.sim.memory_request import MemoryRequest
from repro.sim.warp import Warp


def test_demand_request_flags():
    req = MemoryRequest(64, core_id=1, warp_id=2, pc=0x10, is_prefetch=False, create_cycle=5)
    assert req.is_demand
    assert not req.is_prefetch
    assert not req.was_prefetch
    assert req.create_cycle == 5
    assert req.send_cycle == -1


def test_prefetch_request_flags():
    req = MemoryRequest(64, 1, 2, 0x10, True, 5)
    assert req.is_prefetch
    assert req.was_prefetch
    assert not req.is_demand
    assert not req.late_prefetch


def test_store_is_neither_demand_nor_prefetch():
    req = MemoryRequest(64, 1, 2, 0x10, False, 5, is_store=True)
    assert not req.is_demand
    assert req.is_store


def test_merge_demand_promotes_prefetch():
    req = MemoryRequest(64, 1, 2, 0x10, True, 5)
    warp = Warp(0, 0, [])
    req.merge_demand(warp, 3, cycle=100)
    assert not req.is_prefetch          # promoted
    assert req.was_prefetch             # history preserved
    assert req.late_prefetch            # merged while in flight
    assert req.waiters == [(warp, 3)]


def test_merge_demand_on_demand_adds_waiter_only():
    req = MemoryRequest(64, 1, 2, 0x10, False, 5)
    warp = Warp(0, 0, [])
    req.merge_demand(warp, 7, cycle=10)
    assert not req.late_prefetch
    assert req.waiters == [(warp, 7)]


def test_merge_without_waiter():
    req = MemoryRequest(64, 1, 2, 0x10, True, 5)
    req.merge_demand(None, -1, 10)
    assert req.late_prefetch
    assert req.waiters == []


def test_request_ids_unique():
    a = MemoryRequest(0, 0, 0, 0, False, 0)
    b = MemoryRequest(0, 0, 0, 0, False, 0)
    assert a.rid != b.rid
