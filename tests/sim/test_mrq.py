"""Unit tests for the memory request queue (intra-core merging, Fig. 2a)."""

from repro.sim.mrq import MemoryRequestQueue
from repro.sim.warp import Warp


def make_warp(warp_id=0):
    return Warp(warp_id, 0, [])


def test_new_demand_allocates_entry():
    mrq = MemoryRequestQueue(0, 4)
    warp = make_warp()
    req = mrq.access_demand(0, warp, 1, pc=0x10, warp_id=0, cycle=5)
    assert req is not None
    assert req.is_demand
    assert len(mrq) == 1
    assert mrq.total_requests == 1
    assert mrq.total_merges == 0


def test_demand_demand_merge_counts_intra_core_merge():
    mrq = MemoryRequestQueue(0, 4)
    w0, w1 = make_warp(0), make_warp(1)
    first = mrq.access_demand(0, w0, 1, 0x10, 0, 0)
    second = mrq.access_demand(0, w1, 2, 0x14, 1, 1)
    assert first is second
    assert len(mrq) == 1
    assert mrq.total_merges == 1
    assert len(first.waiters) == 2


def test_demand_merging_into_prefetch_marks_late():
    mrq = MemoryRequestQueue(0, 4)
    pref = mrq.access_prefetch(0, 0x10, 0, 0)
    assert pref.is_prefetch
    warp = make_warp()
    merged = mrq.access_demand(0, warp, 1, 0x14, 0, 3)
    assert merged is pref
    assert not pref.is_prefetch
    assert pref.was_prefetch
    assert pref.late_prefetch
    assert mrq.total_demand_on_prefetch_merges == 1


def test_full_mrq_rejects_demand_but_allows_merge():
    mrq = MemoryRequestQueue(0, 1)
    warp = make_warp()
    mrq.access_demand(0, warp, 1, 0x10, 0, 0)
    assert mrq.access_demand(64, warp, 2, 0x14, 0, 1) is None
    # Merge with the existing line still works while full.
    assert mrq.access_demand(0, warp, 3, 0x18, 0, 2) is not None


def test_full_mrq_drops_prefetch():
    mrq = MemoryRequestQueue(0, 1)
    warp = make_warp()
    mrq.access_demand(0, warp, 1, 0x10, 0, 0)
    assert mrq.access_prefetch(64, 0x14, 0, 1) is None
    assert mrq.total_prefetch_dropped_full == 1


def test_pop_sendable_prefers_demand():
    mrq = MemoryRequestQueue(0, 4)
    warp = make_warp()
    mrq.access_prefetch(0, 0x10, 0, 0)
    mrq.access_demand(64, warp, 1, 0x14, 0, 0)
    first = mrq.pop_sendable(1)
    assert first.line_addr == 64 and first.is_demand
    second = mrq.pop_sendable(2)
    assert second.line_addr == 0 and second.is_prefetch
    assert mrq.pop_sendable(3) is None


def test_store_entry_freed_at_injection():
    mrq = MemoryRequestQueue(0, 4)
    mrq.access_store(0, 0x10, 0, 0)
    assert len(mrq) == 1
    request = mrq.pop_sendable(1)
    assert request.is_store
    assert len(mrq) == 0  # freed at send; no response expected


def test_load_entry_freed_at_completion():
    mrq = MemoryRequestQueue(0, 4)
    warp = make_warp()
    mrq.access_demand(0, warp, 1, 0x10, 0, 0)
    request = mrq.pop_sendable(1)
    assert len(mrq) == 1  # entry acts as an MSHR until the response
    completed = mrq.complete(0)
    assert completed is request
    assert len(mrq) == 0


def test_merge_window_extends_to_in_flight_requests():
    mrq = MemoryRequestQueue(0, 4)
    warp = make_warp()
    mrq.access_prefetch(0, 0x10, 0, 0)
    mrq.pop_sendable(1)  # prefetch now in flight
    merged = mrq.access_demand(0, warp, 1, 0x14, 0, 50)
    assert merged.late_prefetch


def test_window_snapshot():
    mrq = MemoryRequestQueue(0, 8)
    warp = make_warp()
    mrq.access_demand(0, warp, 1, 0x10, 0, 0)
    mrq.access_demand(0, warp, 2, 0x10, 0, 1)
    snap = mrq.snapshot_and_reset_window()
    assert snap == {"merges": 1, "requests": 2}
    assert mrq.snapshot_and_reset_window() == {"merges": 0, "requests": 0}
    assert mrq.total_merges == 1 and mrq.total_requests == 2


def test_sendable_flag():
    mrq = MemoryRequestQueue(0, 4)
    assert not mrq.has_sendable()
    mrq.access_prefetch(0, 0x10, 0, 0)
    assert mrq.has_sendable()
    mrq.pop_sendable(1)
    assert not mrq.has_sendable()
