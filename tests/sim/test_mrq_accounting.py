"""MRQ edge-case accounting and the deadlock regressions diffcheck surfaced.

Two classes of bug live (or lived) at the MRQ boundary, and both families
are pinned here with the minimal repro kernels the differential harness
shrank them to:

1. **Accounting** — Eq. 6's inputs (``total_merges`` / ``total_requests``)
   must be exact: a redundant prefetch probing an in-flight line is not a
   merge, ``total_demand_on_prefetch_merges`` is single-counted per
   prefetch entry, and a demand merging into a not-yet-sent store promotes
   the entry (a store entry is freed at injection with no response; an
   unpromoted merge strands the demand waiter forever).
2. **Structural deadlock** — an instruction whose fresh-line footprint
   exceeds the *whole* MRQ can never satisfy the all-at-once room check;
   the core must fall back to chunked issue (``Core._issue_chunk``)
   instead of stalling forever.
"""

import dataclasses

from repro.sim.config import baseline_config
from repro.sim.gpu import GpuSimulator
from repro.sim.mrq import MemoryRequestQueue
from repro.sim.warp import Warp
from repro.trace.kernels import Compute, KernelSpec, Load, Store
from repro.trace.tracegen import generate_workload


def make_warp(warp_id=0):
    return Warp(warp_id, 0, [])


# ----------------------------------------------------------------------
# Eq. 6 input exactness (unit level)
# ----------------------------------------------------------------------


class TestRedundantPrefetchAccounting:
    def test_prefetch_on_inflight_line_is_not_an_eq6_merge(self):
        """A redundant prefetch must not inflate the throttle's merge ratio."""
        mrq = MemoryRequestQueue(0, 4)
        warp = make_warp()
        mrq.access_demand(0, warp, 1, 0x10, 0, 0)
        merges, requests = mrq.total_merges, mrq.total_requests
        existing = mrq.access_prefetch(0, 0x20, 0, 1)
        assert existing is not None  # probe resolves to the in-flight entry
        assert mrq.total_prefetch_merged == 1
        assert mrq.total_merges == merges, "redundant prefetch counted as merge"
        assert mrq.total_requests == requests, (
            "redundant prefetch counted as an Eq. 6 request"
        )
        # Window counters feed the same equation and must agree.
        assert mrq.snapshot_and_reset_window() == {"merges": 0, "requests": 1}

    def test_prefetch_on_prefetch_is_also_redundant(self):
        mrq = MemoryRequestQueue(0, 4)
        mrq.access_prefetch(0, 0x10, 0, 0)
        mrq.access_prefetch(0, 0x10, 0, 1)
        assert mrq.total_prefetch_merged == 1
        assert mrq.total_requests == 1  # only the original allocation

    def test_full_queue_merge_beats_drop(self):
        """Drop-vs-merge ordering: a prefetch to a tracked line merges even
        when the queue is full; only genuinely new lines are dropped."""
        mrq = MemoryRequestQueue(0, 1)
        warp = make_warp()
        mrq.access_demand(0, warp, 1, 0x10, 0, 0)
        assert mrq.full
        assert mrq.access_prefetch(0, 0x20, 0, 1) is not None
        assert mrq.total_prefetch_merged == 1
        assert mrq.total_prefetch_dropped_full == 0
        assert mrq.access_prefetch(64, 0x20, 0, 2) is None
        assert mrq.total_prefetch_dropped_full == 1

    def test_state_dict_round_trips_prefetch_merged(self):
        mrq = MemoryRequestQueue(0, 4)
        warp = make_warp()
        req = mrq.access_demand(0, warp, 1, 0x10, 0, 0)
        mrq.access_prefetch(0, 0x20, 0, 1)
        state = mrq.state_dict()
        assert state["total_prefetch_merged"] == 1
        clone = MemoryRequestQueue(0, 4)
        clone.load_state_dict(state, {req.rid: req})
        assert clone.total_prefetch_merged == 1
        assert clone.state_dict() == state


class TestDemandOnPrefetchSingleCount:
    def test_second_demand_merge_is_demand_on_demand(self):
        """The first demand merge clears the prefetch bit, so later demands
        merging into the same entry must not count as prefetch merges."""
        mrq = MemoryRequestQueue(0, 4)
        w0, w1 = make_warp(0), make_warp(1)
        pref = mrq.access_prefetch(0, 0x10, 0, 0)
        assert mrq.access_demand(0, w0, 1, 0x14, 0, 1) is pref
        assert mrq.access_demand(0, w1, 2, 0x18, 1, 2) is pref
        assert mrq.total_demand_on_prefetch_merges == 1
        assert mrq.total_merges == 2  # both are Eq. 6 merges


class TestStorePromotion:
    def test_demand_merge_promotes_unsent_store(self):
        """A demand merging into a not-yet-sent store converts the entry to
        a demand request — otherwise the entry is freed at injection with
        no response and the waiter never wakes (the store-merge deadlock)."""
        mrq = MemoryRequestQueue(0, 4)
        warp = make_warp()
        store = mrq.access_store(0, 0x10, 0, 0)
        assert store.is_store
        merged = mrq.access_demand(0, warp, 1, 0x14, 0, 7)
        warp.begin_load(1, 1)  # the core registers the outstanding line
        assert merged is store
        assert not merged.is_store, "store entry not promoted to demand"
        assert merged.create_cycle == 7, (
            "demand latency must be measured from the merge, not the store"
        )
        assert mrq.total_merges == 1
        # The promoted entry now follows the load lifecycle: allocated
        # until the response arrives, then it wakes the waiter.
        request = mrq.pop_sendable(8)
        assert request is merged
        assert len(mrq) == 1, "promoted entry must persist until completion"
        assert mrq.complete(0) is merged
        assert warp.line_complete(1)


# ----------------------------------------------------------------------
# End-to-end deadlock regressions (minimal repros from the shrinker)
# ----------------------------------------------------------------------


def tiny_config(mrq_size):
    cfg = baseline_config().replace(num_cores=1)
    return cfg.replace(core=dataclasses.replace(cfg.core, mrq_size=mrq_size))


def run_kernel(spec, mrq_size):
    wl = generate_workload(spec)
    sim = GpuSimulator(tiny_config(mrq_size), None, invariants=True)
    sim.load_workload(wl.blocks, wl.max_blocks_per_core)
    return sim.run(strict=True), wl


class TestOverFootprintChunkedIssue:
    """Regression: diffcheck's fuzzer found that one uncoalesced LOAD whose
    line footprint (32 fresh lines) exceeds a 16-entry MRQ deadlocked at
    cycle 8 — the all-at-once room check could never pass.  The shrunk
    minimal repro is pinned here against the chunked-issue path."""

    def repro_spec(self, body, delinquent=()):
        return KernelSpec(
            name="chunk-repro",
            suite="fuzz",
            btype="uncoal",
            threads_per_block=32,
            num_blocks=1,
            body=body,
            loop_iters=0,
            stride_delinquent=delinquent,
        )

    def test_load_wider_than_mrq_completes(self):
        spec = self.repro_spec(
            (
                Load("x0", "A", lane_stride=128),  # 32 distinct lines
                Compute(1, consumes=("x0",)),
            ),
            delinquent=("x0",),
        )
        result, wl = run_kernel(spec, mrq_size=16)
        assert result.stats.instructions == wl.total_instructions()
        # Chunked issue must not double-count: exactly one line per lane.
        assert result.stats.demand_lines_to_memory == 32
        assert result.stats.demand_loads == 1

    def test_store_wider_than_mrq_completes(self):
        spec = self.repro_spec(
            (
                Store("A", lane_stride=128),
                Load("x0", "B", lane_stride=4),
                Compute(1, consumes=("x0",)),
            ),
            delinquent=("x0",),
        )
        result, wl = run_kernel(spec, mrq_size=16)
        assert result.stats.instructions == wl.total_instructions()

    def test_chunked_and_whole_issue_agree_on_traffic(self):
        """The same kernel on a roomy MRQ must see identical demand traffic:
        chunking changes *when* lines enter the queue, never how many."""
        spec = self.repro_spec(
            (
                Load("x0", "A", lane_stride=128),
                Compute(1, consumes=("x0",)),
            ),
            delinquent=("x0",),
        )
        chunked, _ = run_kernel(spec, mrq_size=16)
        whole, _ = run_kernel(spec, mrq_size=64)
        assert (
            chunked.stats.demand_lines_to_memory
            == whole.stats.demand_lines_to_memory
        )
        assert chunked.stats.demand_loads == whole.stats.demand_loads
        assert chunked.stats.instructions == whole.stats.instructions


class TestStoreMergeDeadlockRegression:
    """Regression for the store-merge deadlock: an uncoalesced store backs
    up unsent in a tiny MRQ, and a following load to the same lines merges
    into the store entries.  Without promotion the waiters strand."""

    def test_store_then_load_same_array_completes(self):
        spec = KernelSpec(
            name="store-merge-repro",
            suite="fuzz",
            btype="uncoal",
            threads_per_block=32,
            num_blocks=1,
            body=(
                Store("A", lane_stride=64),
                Load("x0", "A", lane_stride=64),
                Compute(1, consumes=("x0",)),
            ),
            loop_iters=2,
            stride_delinquent=("x0",),
        )
        result, wl = run_kernel(spec, mrq_size=8)
        assert result.stats.instructions == wl.total_instructions()


# ----------------------------------------------------------------------
# Chunked-issue warp bookkeeping (unit level)
# ----------------------------------------------------------------------


class TestBeginLoadChunk:
    def test_open_count_blocks_early_completion(self):
        """Responses for early chunks can arrive before later chunks exist;
        the open count keeps the token incomplete until the final chunk."""
        warp = make_warp()
        warp.begin_load_chunk(1, 2, final=False)
        assert warp.line_complete(1) is False
        assert warp.line_complete(1) is False  # both lines back, still open
        warp.begin_load_chunk(1, 1, final=True)
        assert warp.line_complete(1) is True
        assert 1 in warp.tokens_done

    def test_final_chunk_with_all_lines_already_home(self):
        warp = make_warp()
        warp.begin_load_chunk(2, 1, final=False)
        assert not warp.line_complete(2)
        warp.begin_load_chunk(2, 0, final=True)  # last chunk fully cache-hit
        assert 2 in warp.tokens_done

    def test_fully_hit_single_chunk_completes_immediately(self):
        warp = make_warp()
        warp.begin_load_chunk(3, 0, final=True)
        assert 3 in warp.tokens_done
        assert warp.outstanding_loads() == 0

    def test_line_offset_round_trips_through_state_dict(self):
        warp = make_warp()
        warp.line_offset = 17
        warp.begin_load_chunk(1, 4, final=False)
        clone = Warp.from_state(warp.state_dict(), [])
        assert clone.line_offset == 17
        assert clone.state_dict() == warp.state_dict()
