"""Unit tests for the opt-in simulator profiling subsystem."""

import json

import pytest

from repro.harness.runner import make_spec, run_spec
from repro.sim.profiling import (
    COMPONENTS,
    PHASES,
    PROFILE_DIR_ENV,
    PROFILE_SCHEMA,
    SimProfiler,
    profile_dir_from_env,
)


class TestSimProfiler:
    def test_initial_state(self):
        prof = SimProfiler()
        assert set(prof.wall) == set(PHASES)
        assert set(prof.active_cycles) == set(COMPONENTS)
        assert prof.loop_iterations == 0
        assert prof.cycles == 0
        assert prof.sim_cycles_per_sec == 0.0

    def test_start_finish_records_wall_time(self):
        prof = SimProfiler()
        prof.start()
        prof.finish(1000)
        assert prof.cycles == 1000
        assert prof.wall_seconds > 0.0
        assert prof.sim_cycles_per_sec > 0.0

    def test_cycles_skipped(self):
        prof = SimProfiler()
        prof.cycles = 100
        prof.loop_iterations = 30
        assert prof.cycles_skipped == 70

    def test_to_dict_schema(self):
        prof = SimProfiler()
        prof.benchmark = "cell"
        prof.start()
        prof.finish(10)
        doc = prof.to_dict()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["benchmark"] == "cell"
        assert set(doc["phases_wall_seconds"]) == set(PHASES)
        assert set(doc["phases_wall_fraction"]) == set(PHASES)
        assert set(doc["active_cycles"]) == set(COMPONENTS)
        assert doc["counts"]["prefetcher_lookups"] == 0
        assert doc["loop_overhead_seconds"] >= 0.0

    def test_write_roundtrips_json(self, tmp_path):
        prof = SimProfiler()
        prof.start()
        prof.finish(42)
        path = prof.write(tmp_path / "nested" / "profile.json")
        doc = json.loads(path.read_text())
        assert doc["cycles"] == 42

    def test_summary_is_human_readable(self):
        prof = SimProfiler()
        prof.start()
        prof.finish(500)
        prof.wall["issue"] = prof.wall_seconds / 2
        text = prof.summary()
        assert "cycles" in text
        assert "issue" in text


class TestProfileDirEnv:
    def test_unset_and_empty(self, monkeypatch):
        monkeypatch.delenv(PROFILE_DIR_ENV, raising=False)
        assert profile_dir_from_env() is None
        monkeypatch.setenv(PROFILE_DIR_ENV, "  ")
        assert profile_dir_from_env() is None

    def test_set(self, monkeypatch, tmp_path):
        monkeypatch.setenv(PROFILE_DIR_ENV, str(tmp_path))
        assert profile_dir_from_env() == tmp_path


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def profiled(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("profiles") / "cell.json"
        spec = make_spec("cell", software="stride", throttle=True, scale=0.25)
        result = run_spec(spec, profile_path=path)
        return result, json.loads(path.read_text())

    def test_profile_written_via_run_spec(self, profiled):
        result, doc = profiled
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["benchmark"] == "cell"
        assert doc["cycles"] == result.stats.cycles

    def test_loop_iterations_bounded_by_cycles(self, profiled):
        _, doc = profiled
        assert 0 < doc["loop_iterations"] <= doc["cycles"]
        assert doc["cycles_skipped"] == doc["cycles"] - doc["loop_iterations"]

    def test_phases_account_for_most_wall_time(self, profiled):
        _, doc = profiled
        measured = sum(
            v for k, v in doc["phases_wall_seconds"].items() if k != "prefetcher"
        )
        assert 0.0 < measured <= doc["wall_seconds"] + 1e-6

    def test_component_activity_recorded(self, profiled):
        _, doc = profiled
        active = doc["active_cycles"]
        assert active["core_issue"] > 0
        assert active["dram"] > 0
        assert active["mrq_inject"] > 0
        # A response was delivered for every DRAM completion burst.
        assert active["interconnect_response"] > 0

    def test_env_dir_profile(self, monkeypatch, tmp_path):
        monkeypatch.setenv(PROFILE_DIR_ENV, str(tmp_path))
        spec = make_spec("cell", scale=0.25)
        run_spec(spec)
        files = list(tmp_path.glob("cell-*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["benchmark"] == "cell"
