"""Windowed-telemetry suite: exactness, purity, and resume identity.

The :mod:`repro.sim.telemetry` contract has three load-bearing claims,
each pinned here:

1. **Exactness.**  Per-counter sums over the window series reconcile
   *exactly* with the run's final counters — against
   :class:`~repro.sim.stats.SimStats` for every counter with an
   aggregate field (:data:`SIMSTATS_EQUIVALENTS`), and against the
   per-core machine counters for the rest.  No sampling loss, ever.
2. **Purity.**  Attaching a recorder changes nothing the simulation can
   observe: a metrics-enabled run serializes bit-identically to an
   unobserved one, and both match the committed pre-telemetry golden
   capture.
3. **Resume identity.**  A run interrupted mid-flight and restored from
   its checkpoint replays the remaining samples at the same cycles with
   the same deltas — the resumed window series is bit-identical to an
   uninterrupted control run's.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.harness.runner import HARDWARE_SCHEMES, make_spec, run_spec
from repro.harness.sweep import fingerprint
from repro.sim.checkpoint import (
    attach_checkpointing,
    load_checkpoint,
    restore_simulator,
)
from repro.sim.gpu import GpuSimulator
from repro.sim.telemetry import (
    COUNTERS,
    DEFAULT_METRICS_INTERVAL,
    GAUGES,
    METRICS_SCHEMA,
    SIMSTATS_EQUIVALENTS,
    MetricsRecorder,
    metrics_interval_from_env,
    to_chrome_trace,
    validate_metrics_document,
)
from repro.trace.benchmarks import get_benchmark
from repro.trace.tracegen import generate_workload

from tests.test_determinism import canonical_stats, golden_runs, sha256

#: A small spec that exercises the full counter schema: a hardware
#: prefetcher (issue/useful/late/merged/dropped series), the adaptive
#: throttle (drop series), and enough cycles for several windows.
REQUEST = dict(benchmark="cell", hardware="mt-hwp", throttle=True, scale=0.1)

INTERVAL = 250


def effective_config(spec):
    """The config a run of ``spec`` simulates under (throttle merged in)."""
    cfg = spec.config
    if spec.throttle != cfg.throttle.enabled:
        cfg = cfg.replace(
            throttle=dataclasses.replace(cfg.throttle, enabled=spec.throttle)
        )
    return cfg


def build_sim(spec, metrics=None):
    """Construct and load a simulator for ``spec``, run_spec-equivalent."""
    cfg = effective_config(spec)
    builder = HARDWARE_SCHEMES[spec.hardware]
    factory = (
        (lambda core_id: builder(spec.distance, spec.degree))
        if builder is not None else None
    )
    kernel = get_benchmark(spec.benchmark, scale=spec.scale)
    workload = generate_workload(kernel, swp=spec.software)
    sim = GpuSimulator(cfg, factory, metrics=metrics)
    sim.load_workload(workload.blocks, workload.max_blocks_per_core)
    sim._test_factory = factory
    sim._test_workload = workload
    return sim


def recorded_run(tmp_path, interval=INTERVAL, **overrides):
    """Run REQUEST (with overrides) metrics-enabled; return (result, doc)."""
    request = {**REQUEST, **overrides}
    path = tmp_path / "run.metrics.json"
    result = run_spec(
        make_spec(**request), metrics_path=path, metrics_interval=interval
    )
    with open(path, "r", encoding="utf-8") as fh:
        return result, json.load(fh)


# -- exactness ---------------------------------------------------------


def test_document_validates_and_windows_cover_the_run(tmp_path):
    result, doc = recorded_run(tmp_path)
    validate_metrics_document(doc)
    assert doc["schema"] == METRICS_SCHEMA
    assert doc["benchmark"] == "cell"
    assert doc["cycles"] == result.stats.cycles
    assert doc["num_cores"] == result.stats.num_cores
    windows = doc["windows"]
    assert len(windows) >= 3, "expected several windows at this interval"
    assert windows[0]["start"] == 0
    assert windows[-1]["end"] == result.stats.cycles
    for earlier, later in zip(windows, windows[1:]):
        assert later["start"] == earlier["end"]


def test_window_totals_reconcile_exactly_with_simstats(tmp_path):
    """Every counter with a SimStats aggregate matches it to the unit."""
    result, doc = recorded_run(tmp_path)
    stats = result.stats
    for counter, field in SIMSTATS_EQUIVALENTS.items():
        window_sum = sum(window[counter] for window in doc["windows"])
        assert window_sum == doc["totals"][counter] == getattr(stats, field), (
            f"counter {counter!r} does not reconcile with SimStats.{field}"
        )


def test_counters_without_simstats_fields_reconcile_with_machine(tmp_path):
    """The rest reconcile against the per-core machine counters.

    Uses a single-entry MRQ so multi-line instructions must issue in
    chunks and bounce off a full queue — under the baseline 512-entry
    queue (or any size the smallest instruction fits in whole) the
    all-at-once room check stalls the warp *before* the queue is
    touched, which would leave ``mrq_full_rejections`` untested.
    """
    from repro.sim.config import baseline_config

    base = baseline_config()
    cfg = base.replace(core=dataclasses.replace(base.core, mrq_size=1))
    recorder = MetricsRecorder(interval=INTERVAL)
    sim = build_sim(make_spec(**REQUEST, config=cfg), metrics=recorder)
    sim.run()
    machine = {
        "warps_retired": sum(c.warps_retired for c in sim.cores),
        "mrq_full_rejections": sum(
            c.mrq.total_full_rejections for c in sim.cores
        ),
        "prefetches_merged": sum(
            c.mrq.total_prefetch_merged for c in sim.cores
        ),
        "prefetches_dropped": sum(
            c.prefetch_throttled + c.mrq.total_prefetch_dropped_full
            for c in sim.cores
        ),
        "throttle_drops": sum(c.throttle.total_dropped for c in sim.cores),
    }
    assert set(machine) == set(COUNTERS) - set(SIMSTATS_EQUIVALENTS)
    doc = recorder.to_dict()
    validate_metrics_document(doc)
    for counter, expected in machine.items():
        assert sum(w[counter] for w in doc["windows"]) == expected
    assert machine["mrq_full_rejections"] > 0, (
        "spec no longer exercises MRQ full-queue rejections; pick one that does"
    )


def test_every_window_carries_the_full_schema(tmp_path):
    _, doc = recorded_run(tmp_path)
    for window in doc["windows"]:
        for key in ("index", "start", "end", "cycles", "ipc") + COUNTERS + GAUGES:
            assert key in window
        assert 0.0 <= window["throttle_keep_fraction_min"] <= 1.0
        assert window["ipc"] >= 0.0


def test_ring_bound_drops_oldest_but_totals_stay_exact():
    recorder = MetricsRecorder(interval=INTERVAL, max_windows=2)
    sim = build_sim(make_spec(**REQUEST), metrics=recorder)
    result = sim.run()
    assert recorder.windows_dropped > 0
    assert len(recorder.windows) == 2
    assert recorder.windows_emitted == len(recorder.windows) + recorder.windows_dropped
    # Totals are cumulative snapshots, untouched by ring eviction.
    assert recorder.totals["instructions"] == result.stats.instructions
    assert recorder.windows[-1]["end"] == result.stats.cycles


# -- purity ------------------------------------------------------------


def test_recorder_does_not_perturb_stats(tmp_path):
    """Metrics-enabled and unobserved runs serialize identically."""
    plain = canonical_stats(run_spec(make_spec(**REQUEST)))
    recorded = canonical_stats(
        run_spec(
            make_spec(**REQUEST),
            metrics_path=tmp_path / "m.json",
            metrics_interval=INTERVAL,
        )
    )
    assert plain == recorded
    assert (tmp_path / "m.json").exists()


def test_recorded_run_matches_pre_telemetry_golden(tmp_path):
    """A metrics-enabled run still matches the committed golden capture."""
    run = next(
        r for r in golden_runs()
        if r["request"].get("hardware") == "mt-hwp" and r["request"].get("throttle")
    )
    result = run_spec(
        make_spec(**run["request"]),
        metrics_path=tmp_path / "m.json",
        metrics_interval=DEFAULT_METRICS_INTERVAL,
    )
    assert sha256(result) == run["sha256"]


# -- resume identity ---------------------------------------------------


def test_kill_and_resume_reproduces_identical_window_series(tmp_path):
    """Interrupt mid-run, restore, finish: window series bit-identical."""
    spec = make_spec(**REQUEST)
    control_rec = MetricsRecorder(interval=INTERVAL)
    control = build_sim(spec, metrics=control_rec)
    control.run()
    control_doc = control_rec.to_dict()
    assert len(control_doc["windows"]) >= 4

    ckpt = tmp_path / "run.ckpt.json"
    interrupted_rec = MetricsRecorder(interval=INTERVAL)
    interrupted = build_sim(spec, metrics=interrupted_rec)
    attach_checkpointing(interrupted, ckpt, interval=3 * INTERVAL, fingerprint="t")

    class _Kill(Exception):
        pass

    def _die_mid_run(sim):
        if sim.cycle >= 4 * INTERVAL:
            raise _Kill

    interrupted.supervision_interval = INTERVAL
    interrupted.supervision_hook = _die_mid_run
    with pytest.raises(_Kill):
        interrupted.run()
    assert ckpt.exists(), "no snapshot was taken before the injected kill"

    envelope = load_checkpoint(ckpt, config=effective_config(spec), fingerprint="t")
    resumed_rec = MetricsRecorder(interval=INTERVAL)
    resumed = restore_simulator(
        envelope,
        effective_config(spec),
        interrupted._test_factory,
        interrupted._test_workload.blocks,
        interrupted._test_workload.max_blocks_per_core,
        metrics=resumed_rec,
    )
    assert resumed_rec.next_sample_cycle == envelope["payload"]["metrics"][
        "next_sample_cycle"
    ]
    resumed.run()
    resumed_doc = resumed_rec.to_dict()
    assert resumed_doc["windows"] == control_doc["windows"]
    assert resumed_doc["totals"] == control_doc["totals"]
    assert resumed_doc["cycles"] == control_doc["cycles"]


def test_restore_without_recorder_ignores_metrics_state(tmp_path):
    """Old code paths (no recorder attached) load new snapshots fine."""
    spec = make_spec(**REQUEST)
    ckpt = tmp_path / "run.ckpt.json"
    recorder = MetricsRecorder(interval=INTERVAL)
    sim = build_sim(spec, metrics=recorder)
    attach_checkpointing(sim, ckpt, interval=2 * INTERVAL, fingerprint="t")
    sim.run()

    plain = build_sim(spec)
    expected = canonical_stats(plain.run())
    # The final checkpoint is removed on completion by run_spec, not by
    # the raw loop; take a fresh mid-run snapshot instead.
    assert ckpt.exists()
    envelope = load_checkpoint(ckpt, config=effective_config(spec), fingerprint="t")
    assert envelope["payload"]["metrics"] is not None
    resumed = restore_simulator(
        envelope,
        effective_config(spec),
        sim._test_factory,
        sim._test_workload.blocks,
        sim._test_workload.max_blocks_per_core,
    )
    assert canonical_stats(resumed.run()) == expected


# -- validation and export ---------------------------------------------


def test_validate_rejects_broken_documents(tmp_path):
    _, doc = recorded_run(tmp_path)

    bad = json.loads(json.dumps(doc))
    bad["schema"] = 99
    with pytest.raises(ValueError, match="schema"):
        validate_metrics_document(bad)

    bad = json.loads(json.dumps(doc))
    bad["windows"][1]["start"] += 1
    with pytest.raises(ValueError, match="contiguous"):
        validate_metrics_document(bad)

    bad = json.loads(json.dumps(doc))
    bad["windows"][0]["instructions"] += 1
    with pytest.raises(ValueError, match="exactness"):
        validate_metrics_document(bad)

    bad = json.loads(json.dumps(doc))
    del bad["windows"][0]["mrq_occupancy"]
    with pytest.raises(ValueError, match="mrq_occupancy"):
        validate_metrics_document(bad)

    with pytest.raises(ValueError, match="JSON object"):
        validate_metrics_document([])


def test_chrome_trace_structure(tmp_path):
    _, doc = recorded_run(tmp_path)
    trace = to_chrome_trace(doc)
    events = trace["traceEvents"]
    assert events[0]["ph"] == "M"
    windows = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    assert len(windows) == len(doc["windows"])
    assert counters, "expected counter events"
    for event in windows:
        assert event["dur"] >= 1
        assert event["ts"] >= 0
    # The document round-trips through JSON (what --format chrome emits).
    json.dumps(trace)


def test_interval_env_fallback(monkeypatch):
    from repro.sim.telemetry import METRICS_INTERVAL_ENV

    monkeypatch.delenv(METRICS_INTERVAL_ENV, raising=False)
    assert metrics_interval_from_env() == DEFAULT_METRICS_INTERVAL
    monkeypatch.setenv(METRICS_INTERVAL_ENV, "250")
    assert metrics_interval_from_env() == 250
    for bad in ("", "banana", "0", "-5"):
        monkeypatch.setenv(METRICS_INTERVAL_ENV, bad)
        assert metrics_interval_from_env() == DEFAULT_METRICS_INTERVAL


def test_recorder_rejects_bad_construction():
    with pytest.raises(ValueError):
        MetricsRecorder(interval=0)
    with pytest.raises(ValueError):
        MetricsRecorder(max_windows=0)


def test_metrics_path_uses_cache_key_prefix(tmp_path):
    from repro.harness.runner import metrics_path_for

    spec = make_spec(**REQUEST)
    path = metrics_path_for(spec, tmp_path)
    assert path.name == f"cell-{fingerprint(spec)[:12]}.metrics.json"
