"""Cross-cutting invariants between trace generation and the benchmarks."""

import pytest

from repro.sim.isa import MemSpace, Op
from repro.trace.benchmarks import MEMORY_BENCHMARKS, get_benchmark
from repro.trace.swp import MT_SWP
from repro.trace.tracegen import generate_workload


@pytest.fixture(scope="module", params=["monte", "backprop", "bfs", "linear"])
def workload(request):
    return generate_workload(get_benchmark(request.param, scale=0.25))


def all_instructions(wl):
    for _, warps in wl.blocks:
        for _, stream in warps:
            yield from stream


def test_all_lines_are_aligned(workload):
    for inst in all_instructions(workload):
        for line in inst.lines:
            assert line % 64 == 0
            assert line >= 0


def test_loads_have_unique_tokens_per_warp(workload):
    for _, warps in workload.blocks:
        for _, stream in warps:
            tokens = [i.token for i in stream if i.op == Op.LOAD]
            assert len(tokens) == len(set(tokens))


def test_wait_tokens_reference_earlier_loads(workload):
    for _, warps in workload.blocks:
        for _, stream in warps:
            seen = set()
            for inst in stream:
                for token in inst.wait_tokens:
                    assert token in seen, "wait on a not-yet-issued load"
                if inst.op == Op.LOAD:
                    seen.add(inst.token)


def test_global_memory_instructions_have_lines(workload):
    for inst in all_instructions(workload):
        if inst.is_memory and inst.space == MemSpace.GLOBAL:
            assert inst.lines


def test_warp_ids_globally_unique_and_dense(workload):
    ids = [wid for _, warps in workload.blocks for wid, _ in warps]
    assert len(ids) == len(set(ids))
    assert sorted(ids) == list(range(len(ids)))


@pytest.mark.parametrize("name", MEMORY_BENCHMARKS)
def test_swp_prefetch_addresses_match_some_demand(name):
    """Every IP/stride software prefetch targets a line some warp demands
    (out-of-bounds tail prefetches past the grid are the only exception)."""
    wl = generate_workload(get_benchmark(name, scale=0.2), swp=MT_SWP)
    demand_lines = set()
    prefetch_lines = set()
    for inst in all_instructions(wl):
        if inst.op == Op.LOAD and inst.space == MemSpace.GLOBAL:
            demand_lines.update(inst.lines)
        elif inst.op == Op.PREFETCH:
            prefetch_lines.update(inst.lines)
    if not prefetch_lines:
        pytest.skip(f"{name} has no delinquent loads for MT-SWP")
    covered = len(prefetch_lines & demand_lines) / len(prefetch_lines)
    assert covered > 0.8, f"{name}: only {covered:.0%} of prefetches useful"
