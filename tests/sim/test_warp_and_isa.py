"""Unit tests for warp state, the ISA records, and the occupancy calculator."""

import pytest

from repro.sim.config import CoreConfig
from repro.sim.isa import MemSpace, Op, compute, fdiv, imul, load, prefetch, store
from repro.sim.occupancy import KernelResources, max_blocks_per_core, occupancy_fraction
from repro.sim.warp import Warp


class TestIsaBuilders:
    def test_compute_kinds(self):
        assert compute().op == Op.COMPUTE
        assert imul().op == Op.IMUL
        assert fdiv().op == Op.FDIV
        assert not compute().is_memory

    def test_load_builder(self):
        inst = load(pc=0x10, token=3, lines=[0, 64], wait_tokens=[1])
        assert inst.op == Op.LOAD
        assert inst.is_memory
        assert inst.token == 3
        assert inst.lines == (0, 64)
        assert inst.base_addr == 0
        assert inst.wait_tokens == (1,)

    def test_store_and_prefetch_builders(self):
        st = store(pc=0x20, lines=[128])
        assert st.op == Op.STORE and st.token == -1
        pf = prefetch(pc=0x30, lines=[256, 320])
        assert pf.op == Op.PREFETCH
        assert pf.base_addr == 256

    def test_spaces(self):
        inst = load(0x10, 0, [0], space=MemSpace.SHARED)
        assert inst.space == MemSpace.SHARED


class TestWarp:
    def make_warp(self):
        stream = [
            load(0x10, token=0, lines=[0, 64]),
            compute(0x20),
            compute(0x30, wait_tokens=[0]),
        ]
        return Warp(5, 1, stream)

    def test_initial_state(self):
        warp = self.make_warp()
        assert not warp.finished
        assert warp.issuable(0)
        assert warp.peek().op == Op.LOAD

    def test_dependency_blocks_until_lines_complete(self):
        warp = self.make_warp()
        warp.begin_load(0, num_lines=2)
        warp.advance(0, 4)          # past the load
        warp.advance(4, 8)          # past the independent compute
        assert not warp.issuable(8)          # waits on token 0
        assert warp.blocked_on_tokens()
        assert not warp.line_complete(0)     # one of two lines
        assert warp.line_complete(0)         # second line completes token
        assert warp.issuable(8)

    def test_zero_line_load_completes_immediately(self):
        warp = self.make_warp()
        warp.begin_load(0, num_lines=0)
        assert 0 in warp.tokens_done

    def test_ready_cycle_gates_issue(self):
        warp = self.make_warp()
        warp.begin_load(0, 0)
        warp.advance(0, 10)
        assert not warp.issuable(9)
        assert warp.issuable(10)

    def test_finish_records_cycle(self):
        warp = self.make_warp()
        warp.begin_load(0, 0)
        for cycle in (0, 4, 8):
            warp.advance(cycle, cycle + 4)
        assert warp.finished
        assert warp.finish_cycle == 8
        assert warp.peek() is None

    def test_outstanding_loads_counter(self):
        warp = self.make_warp()
        warp.begin_load(0, 2)
        assert warp.outstanding_loads() == 1
        warp.line_complete(0)
        warp.line_complete(0)
        assert warp.outstanding_loads() == 0


class TestOccupancy:
    def core(self):
        return CoreConfig()

    def test_block_slot_limit(self):
        res = KernelResources(threads_per_block=32, regs_per_thread=1, smem_per_block=0)
        assert max_blocks_per_core(res, self.core()) == 8

    def test_thread_limit(self):
        res = KernelResources(threads_per_block=512, regs_per_thread=1, smem_per_block=0)
        assert max_blocks_per_core(res, self.core()) == 1

    def test_register_limit(self):
        # 8192 regs / (32 regs * 256 threads) = 1 block.
        res = KernelResources(threads_per_block=256, regs_per_thread=32, smem_per_block=0)
        assert max_blocks_per_core(res, self.core()) == 1

    def test_shared_memory_limit(self):
        res = KernelResources(threads_per_block=32, regs_per_thread=1, smem_per_block=8192)
        assert max_blocks_per_core(res, self.core()) == 2

    def test_register_prefetching_can_halve_occupancy(self):
        """The paper's Section II-C1 argument against register prefetching."""
        base = KernelResources(256, 16, 0)
        inflated = KernelResources(256, 20, 0)
        assert max_blocks_per_core(base, self.core()) == 2
        assert max_blocks_per_core(inflated, self.core()) == 1

    def test_occupancy_fraction(self):
        res = KernelResources(256, 16, 0)
        assert occupancy_fraction(res, self.core()) == pytest.approx(512 / 768)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            max_blocks_per_core(KernelResources(0, 1, 0), self.core())
