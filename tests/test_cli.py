"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI tests hermetic: the default persistent cache resolves
    through $REPRO_CACHE_DIR, so point it at a per-test directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "default-cache"))


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "monte" in out
    assert "mt-hwp" in out
    assert "mt-swp" in out


def test_run_command_plain(capsys):
    assert main(["run", "cell", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "CPI" in out
    assert "speedup" in out


def test_run_command_json(capsys):
    assert main([
        "run", "cell", "--hardware", "mt-hwp", "--scale", "0.1", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cycles"] > 0
    assert "speedup_over_baseline" in payload
    assert "prefetch_accuracy" in payload


def test_run_with_throttle_and_software(capsys):
    assert main([
        "run", "cell", "--software", "mt-swp", "--throttle", "--scale", "0.1",
    ]) == 0
    assert "speedup" in capsys.readouterr().out


def test_compare_command(capsys):
    assert main([
        "compare", "cell", "--schemes", "mt-swp", "mt-hwp", "--scale", "0.1",
    ]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out
    assert "mt-swp" in out and "mt-hwp" in out


def test_compare_rejects_unknown_scheme(capsys):
    assert main(["compare", "cell", "--schemes", "bogus", "--scale", "0.1"]) == 0
    assert "unknown scheme" in capsys.readouterr().err


def test_figure_table6(capsys):
    assert main(["figure", "table6"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_bytes"] == 557


def test_figure_fig7(capsys):
    assert main(["figure", "fig7"]) == 0
    assert "Figure 7" in capsys.readouterr().out


def test_figure_with_subset(capsys):
    assert main(["figure", "fig10", "--scale", "0.1", "--subset", "cell"]) == 0
    out = capsys.readouterr().out
    assert "cell" in out and "geomean" in out


def test_cache_dir_and_jobs_flags(tmp_path, capsys):
    cache = tmp_path / "cache"
    args = ["run", "cell", "--hardware", "mt-hwp", "--scale", "0.1",
            "--cache-dir", str(cache)]
    assert main(args + ["--jobs", "2"]) == 0
    entries = sorted(cache.glob("v*/*/*.json"))
    assert len(entries) == 2  # baseline + mt-hwp variant persisted
    first_out = capsys.readouterr().out
    # Warm re-run: pure cache hits, same output, no new entries.
    assert main(args) == 0
    assert capsys.readouterr().out == first_out
    assert sorted(cache.glob("v*/*/*.json")) == entries


def test_no_cache_flag_disables_persistence(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["run", "cell", "--scale", "0.1", "--no-cache",
                 "--cache-dir", str(cache)]) == 0
    assert "speedup" in capsys.readouterr().out
    assert not cache.exists()


def test_integrity_flags(tmp_path, monkeypatch, capsys):
    """--invariants exports REPRO_INVARIANTS and the fault-tolerance flags
    thread through to a working run with a checkpoint manifest."""
    import os

    monkeypatch.delenv("REPRO_INVARIANTS", raising=False)
    manifest = tmp_path / "sweep.jsonl"
    assert main([
        "run", "cell", "--scale", "0.1", "--invariants", "--retries", "1",
        "--timeout", "120", "--max-failures", "3",
        "--manifest", str(manifest),
    ]) == 0
    assert os.environ.get("REPRO_INVARIANTS") == "1"
    assert "speedup" in capsys.readouterr().out
    lines = [json.loads(l) for l in manifest.read_text().splitlines()]
    runs = [r for r in lines if r["key"] != "__sweep__"]
    assert runs and all(r["status"] == "done" for r in runs)
    # The sweep-final record marks the manifest as deliberately ended.
    finals = [r for r in lines if r["key"] == "__sweep__"]
    assert finals and finals[-1]["interrupted"] is False


def test_fail_fast_flag_parses(capsys):
    assert main(["run", "cell", "--scale", "0.1", "--fail-fast"]) == 0
    assert "speedup" in capsys.readouterr().out


def test_checkpoint_flags_export_env(tmp_path, monkeypatch, capsys):
    """--checkpoint-dir/--checkpoint-interval export the env vars sweep
    workers inherit, and the run still completes normally."""
    import os

    monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
    monkeypatch.delenv("REPRO_CHECKPOINT_INTERVAL", raising=False)
    ckpt = tmp_path / "checkpoints"
    assert main([
        "run", "cell", "--scale", "0.1",
        "--checkpoint-dir", str(ckpt), "--checkpoint-interval", "400",
    ]) == 0
    assert os.environ.get("REPRO_CHECKPOINT_DIR") == str(ckpt)
    assert os.environ.get("REPRO_CHECKPOINT_INTERVAL") == "400"
    assert "speedup" in capsys.readouterr().out
    # Completed runs clean their snapshots up.
    assert not list(ckpt.glob("*.ckpt.json"))


def test_resume_from_flag(tmp_path, capsys):
    """--resume-from consumes a real mid-run snapshot and completes."""
    from repro.harness.runner import make_spec

    from tests.harness import faults

    snapshot = tmp_path / "cell.ckpt.json"
    spec = make_spec("cell", software="stride", throttle=True, scale=0.1)
    cycle = faults.write_midrun_checkpoint(spec, snapshot)
    assert cycle > 0
    assert main([
        "run", "cell", "--software", "stride", "--throttle", "--scale", "0.1",
        "--resume-from", str(snapshot),
    ]) == 0
    assert "speedup" in capsys.readouterr().out
    assert not snapshot.exists(), "consumed snapshot must be removed"


def test_invalid_benchmark_errors():
    with pytest.raises(KeyError):
        main(["run", "not-a-benchmark"])


def test_invalid_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


SAMPLE_METRICS = Path(__file__).parent / "data" / "sample.metrics.json"


def test_metrics_dir_writes_fingerprinted_documents(tmp_path, monkeypatch, capsys):
    """--metrics-dir exports the env var workers inherit and every
    executed run lands a validated <benchmark>-<fp12>.metrics.json."""
    import os

    from repro.harness.runner import make_spec, metrics_path_for
    from repro.sim.telemetry import validate_metrics_document

    monkeypatch.delenv("REPRO_METRICS_DIR", raising=False)
    monkeypatch.delenv("REPRO_METRICS_INTERVAL", raising=False)
    metrics = tmp_path / "metrics"
    assert main([
        "run", "cell", "--hardware", "mt-hwp", "--throttle", "--scale", "0.1",
        "--metrics-dir", str(metrics), "--metrics-interval", "250",
    ]) == 0
    assert os.environ.get("REPRO_METRICS_DIR") == str(metrics)
    assert os.environ.get("REPRO_METRICS_INTERVAL") == "250"
    assert "speedup" in capsys.readouterr().out
    spec = make_spec("cell", hardware="mt-hwp", throttle=True, scale=0.1)
    expected = metrics_path_for(spec, metrics)
    assert expected.exists(), sorted(p.name for p in metrics.iterdir())
    with open(expected, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_metrics_document(doc)
    assert doc["benchmark"] == "cell"
    assert doc["interval"] == 250


def test_report_markdown_default(capsys):
    """`repro report` renders the committed fixture as markdown."""
    assert main(["report", str(SAMPLE_METRICS)]) == 0
    out = capsys.readouterr().out
    assert "# Run metrics: cell" in out
    assert "## Totals" in out
    assert "## Timeline" in out
    assert "## DRAM bandwidth timeline" in out
    assert "| metric | value |" in out


def test_report_json_roundtrip(capsys):
    assert main(["report", str(SAMPLE_METRICS), "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    with open(SAMPLE_METRICS, "r", encoding="utf-8") as fh:
        assert doc == json.load(fh)


def test_report_chrome_trace(tmp_path, capsys):
    out_file = tmp_path / "trace.json"
    assert main([
        "report", str(SAMPLE_METRICS), "--format", "chrome",
        "--output", str(out_file),
    ]) == 0
    assert "wrote" in capsys.readouterr().out
    with open(out_file, "r", encoding="utf-8") as fh:
        trace = json.load(fh)
    assert trace["traceEvents"][0]["ph"] == "M"
    assert any(e["ph"] == "X" for e in trace["traceEvents"])


def test_report_rejects_missing_and_invalid_files(tmp_path, capsys):
    assert main(["report", str(tmp_path / "absent.metrics.json")]) == 1
    assert "cannot read" in capsys.readouterr().err

    torn = tmp_path / "torn.metrics.json"
    torn.write_text("{not json")
    assert main(["report", str(torn)]) == 1
    assert "cannot read" in capsys.readouterr().err

    invalid = tmp_path / "invalid.metrics.json"
    with open(SAMPLE_METRICS, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    doc["schema"] = 99
    invalid.write_text(json.dumps(doc))
    assert main(["report", str(invalid)]) == 1
    assert "schema" in capsys.readouterr().err
