"""Determinism regression suite.

The hot-path optimization work (PR 3) is only legal because it is
*observationally invisible*: the optimized simulator must produce
byte-identical serialized :class:`~repro.sim.stats.SimStats` for every
workload.  These tests pin that down three ways:

1. against ``tests/data/golden_stats.json`` — stats captured from the
   pre-optimization simulator, so any optimization that changes
   simulated behavior (not just speed) fails loudly;
2. same spec run twice in one process — byte-identical;
3. with and without an attached profiler — the profiling subsystem
   observes the run without perturbing it.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.harness.runner import make_spec, run_spec
from repro.sim.profiling import SimProfiler

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_stats.json"


def canonical_stats(result) -> bytes:
    """The canonical byte serialization the golden hashes are taken over."""
    doc = result.stats.to_dict()
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def sha256(result) -> str:
    return hashlib.sha256(canonical_stats(result)).hexdigest()


def golden_runs():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)["runs"]


@pytest.mark.parametrize(
    "run", golden_runs(),
    ids=lambda run: "-".join(
        str(run["request"][k])
        for k in ("benchmark", "hardware", "software")
    ),
)
def test_stats_match_pre_optimization_golden(run):
    """Optimized simulator == seed simulator, bit for bit."""
    spec = make_spec(**run["request"])
    result = run_spec(spec)
    assert sha256(result) == run["sha256"], (
        "serialized SimStats diverged from the pre-optimization golden "
        f"capture for {run['request']}"
    )


def test_same_spec_twice_is_byte_identical():
    spec = make_spec("cell", software="stride", throttle=True, scale=0.25)
    first = canonical_stats(run_spec(spec))
    second = canonical_stats(run_spec(spec))
    assert first == second


def test_profiler_does_not_perturb_stats(tmp_path):
    """A profiled run and an unprofiled run serialize identically."""
    request = dict(benchmark="backprop", hardware="mt-hwp",
                   throttle=True, scale=0.25)
    plain = canonical_stats(run_spec(make_spec(**request)))
    profiled = canonical_stats(
        run_spec(make_spec(**request), profile_path=tmp_path / "p.json")
    )
    assert plain == profiled
    assert (tmp_path / "p.json").exists()


def test_fresh_simulator_instances_are_independent():
    """No state leaks between back-to-back GpuSimulator builds.

    Regression guard for the shared-empty-result optimization: the
    interconnect/DRAM fast paths return a module-level empty tuple, which
    would corrupt runs if any caller mutated it.
    """
    spec = make_spec("cell", scale=0.25)
    baseline = sha256(run_spec(spec))
    # Interleave a different workload, then re-run the first.
    run_spec(make_spec("backprop", hardware="mt-hwp", throttle=True, scale=0.25))
    assert sha256(run_spec(spec)) == baseline


def test_golden_hashes_self_consistent():
    """The golden file's embedded stats match its own hashes."""
    for run in golden_runs():
        canon = json.dumps(
            run["stats"], sort_keys=True, separators=(",", ":")
        ).encode()
        assert hashlib.sha256(canon).hexdigest() == run["sha256"]
