"""Docstring-coverage gate (a dependency-free stand-in for ``interrogate``).

CI additionally runs the real ``interrogate`` tool in the lint job; this
test keeps the same bar enforceable in any environment the suite runs
in.  Counted objects: modules, public classes, and public module- or
class-level functions (names not starting with ``_``) under
``src/repro``.  Two bars are enforced:

* >= 80% across the whole package (the CI ``interrogate`` threshold),
* 100% for :mod:`repro.harness`, :mod:`repro.sim.profiling` and
  :mod:`repro.sim.telemetry` — the observability surfaces whose public
  APIs are documented exhaustively.
"""

import ast
from pathlib import Path

SRC_ROOT = Path(__file__).parent.parent / "src" / "repro"

#: Paths (relative to src/repro) that must be fully documented: the
#: ``harness`` package plus the observer modules.  A directory entry
#: covers every module under it; a file entry covers that module.
FULLY_DOCUMENTED = ("harness", "sim/profiling.py", "sim/telemetry.py")

#: Package-wide minimum coverage fraction.
THRESHOLD = 0.80


def iter_documentables(tree):
    """Yield (kind, name, has_docstring) for a parsed module."""
    yield "module", "<module>", ast.get_docstring(tree) is not None
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                continue
            yield "class", node.name, ast.get_docstring(node) is not None
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if sub.name.startswith("_"):
                        continue
                    yield (
                        "method",
                        f"{node.name}.{sub.name}",
                        ast.get_docstring(sub) is not None,
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_"):
                continue
            yield "function", node.name, ast.get_docstring(node) is not None


def collect(root):
    """Map relative path -> list of (kind, name, documented) entries."""
    results = {}
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        rel = path.relative_to(root).as_posix()
        results[rel] = list(iter_documentables(tree))
    return results


def test_package_docstring_coverage_at_least_80_percent():
    per_file = collect(SRC_ROOT)
    entries = [e for file_entries in per_file.values() for e in file_entries]
    documented = sum(1 for _, _, has in entries if has)
    coverage = documented / len(entries)
    missing = [
        f"{rel}: {kind} {name}"
        for rel, file_entries in per_file.items()
        for kind, name, has in file_entries
        if not has
    ]
    assert coverage >= THRESHOLD, (
        f"docstring coverage {coverage:.1%} < {THRESHOLD:.0%} "
        f"({documented}/{len(entries)}); missing:\n  " + "\n  ".join(missing)
    )


def covered_by_full_documentation_bar(rel):
    """Whether a module path falls under any :data:`FULLY_DOCUMENTED` entry."""
    return any(
        rel == entry or rel.startswith(entry.rstrip("/") + "/")
        for entry in FULLY_DOCUMENTED
    )


def test_observability_surfaces_fully_documented():
    per_file = collect(SRC_ROOT)
    missing = [
        f"{rel}: {kind} {name}"
        for rel, file_entries in per_file.items()
        if covered_by_full_documentation_bar(rel)
        for kind, name, has in file_entries
        if not has
    ]
    assert not missing, (
        f"{', '.join(FULLY_DOCUMENTED)} must be fully documented; "
        "missing:\n  " + "\n  ".join(missing)
    )
