"""Docstring-coverage gate (a dependency-free stand-in for ``interrogate``).

CI additionally runs the real ``interrogate`` tool in the lint job; this
test keeps the same bar enforceable in any environment the suite runs
in.  Counted objects: modules, public classes, and public module- or
class-level functions (names not starting with ``_``) under
``src/repro``.  Two bars are enforced:

* >= 80% across the whole package (the CI ``interrogate`` threshold),
* 100% for :mod:`repro.harness` and :mod:`repro.sim.profiling`, whose
  public APIs this PR documents exhaustively.
"""

import ast
from pathlib import Path

SRC_ROOT = Path(__file__).parent.parent / "src" / "repro"

#: Paths (relative to src/repro) that must be fully documented.
FULLY_DOCUMENTED = ("harness", "sim/profiling.py")

#: Package-wide minimum coverage fraction.
THRESHOLD = 0.80


def iter_documentables(tree):
    """Yield (kind, name, has_docstring) for a parsed module."""
    yield "module", "<module>", ast.get_docstring(tree) is not None
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            if node.name.startswith("_"):
                continue
            yield "class", node.name, ast.get_docstring(node) is not None
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if sub.name.startswith("_"):
                        continue
                    yield (
                        "method",
                        f"{node.name}.{sub.name}",
                        ast.get_docstring(sub) is not None,
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.startswith("_"):
                continue
            yield "function", node.name, ast.get_docstring(node) is not None


def collect(root):
    """Map relative path -> list of (kind, name, documented) entries."""
    results = {}
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        rel = path.relative_to(root).as_posix()
        results[rel] = list(iter_documentables(tree))
    return results


def test_package_docstring_coverage_at_least_80_percent():
    per_file = collect(SRC_ROOT)
    entries = [e for file_entries in per_file.values() for e in file_entries]
    documented = sum(1 for _, _, has in entries if has)
    coverage = documented / len(entries)
    missing = [
        f"{rel}: {kind} {name}"
        for rel, file_entries in per_file.items()
        for kind, name, has in file_entries
        if not has
    ]
    assert coverage >= THRESHOLD, (
        f"docstring coverage {coverage:.1%} < {THRESHOLD:.0%} "
        f"({documented}/{len(entries)}); missing:\n  " + "\n  ".join(missing)
    )


def test_harness_and_profiling_fully_documented():
    per_file = collect(SRC_ROOT)
    missing = []
    for rel, file_entries in per_file.items():
        if not rel.startswith(FULLY_DOCUMENTED[0]) and rel != FULLY_DOCUMENTED[1]:
            continue
        for kind, name, has in file_entries:
            if not has:
                missing.append(f"{rel}: {kind} {name}")
    assert not missing, (
        "repro.harness and repro.sim.profiling must be fully documented; "
        "missing:\n  " + "\n  ".join(missing)
    )
