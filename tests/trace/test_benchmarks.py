"""Tests for the benchmark suite definitions (Table III / IV structure)."""

import pytest

from repro.trace.benchmarks import (
    BENCHMARK_TYPES,
    COMPUTE_BENCHMARKS,
    MEMORY_BENCHMARKS,
    PAPER_DEL_LOADS,
    PAPER_TABLE4,
    benchmarks_by_type,
    get_benchmark,
)
from repro.trace.tracegen import generate_workload

#: Paper Table III warps-per-block = total warps / blocks.
PAPER_WPB = {
    "black": 4, "conv": 6, "mersenne": 4, "monte": 8, "pns": 8,
    "scalar": 8, "stream": 16, "backprop": 8, "cell": 16, "ocean": 2,
    "bfs": 16, "cfd": 6, "linear": 8, "sepia": 8,
}

#: Paper Table III max blocks per core.
PAPER_MAX_BLOCKS = {
    "black": 3, "conv": 2, "mersenne": 2, "monte": 2, "pns": 1,
    "scalar": 2, "stream": 1, "backprop": 2, "cell": 1, "ocean": 8,
    "bfs": 1, "cfd": 1, "linear": 2, "sepia": 3,
}


class TestSuiteStructure:
    def test_all_fourteen_memory_benchmarks_exist(self):
        assert len(MEMORY_BENCHMARKS) == 14
        for name in MEMORY_BENCHMARKS:
            spec = get_benchmark(name)
            assert spec.name == name

    def test_all_twelve_compute_benchmarks_exist(self):
        assert len(COMPUTE_BENCHMARKS) == 12
        for name in COMPUTE_BENCHMARKS:
            assert get_benchmark(name).btype == "compute"

    def test_types_match_table3(self):
        assert benchmarks_by_type("stride") == [
            "black", "conv", "mersenne", "monte", "pns", "scalar", "stream"
        ]
        assert benchmarks_by_type("mp") == ["backprop", "cell", "ocean"]
        assert benchmarks_by_type("uncoal") == ["bfs", "cfd", "linear", "sepia"]

    @pytest.mark.parametrize("name", MEMORY_BENCHMARKS)
    def test_warps_per_block_match_table3(self, name):
        assert get_benchmark(name).warps_per_block == PAPER_WPB[name]

    @pytest.mark.parametrize("name", MEMORY_BENCHMARKS)
    def test_max_blocks_match_table3(self, name):
        assert get_benchmark(name).paper_max_blocks == PAPER_MAX_BLOCKS[name]

    @pytest.mark.parametrize("name", MEMORY_BENCHMARKS)
    def test_paper_reference_values_recorded(self, name):
        spec = get_benchmark(name)
        assert spec.paper_base_cpi > 4.0
        assert 3.9 <= spec.paper_pmem_cpi <= 6.3
        assert name in PAPER_DEL_LOADS

    def test_mp_type_has_no_loops(self):
        """Paper: mp-type threads "typically do not contain any loops"."""
        for name in benchmarks_by_type("mp"):
            assert get_benchmark(name).loop_iters == 0

    def test_stride_type_has_loops_and_stride_delinquents(self):
        for name in benchmarks_by_type("stride"):
            spec = get_benchmark(name)
            assert spec.loop_iters >= 2
            assert spec.stride_delinquent

    def test_uncoal_type_has_uncoalesced_loads(self):
        """Every uncoal-type kernel has loads with a full line of stride
        between every few lanes (several transactions per warp)."""
        from repro.trace.kernels import Load

        for name in benchmarks_by_type("uncoal"):
            spec = get_benchmark(name)
            uncoal_loads = [
                op for op in spec.body
                if isinstance(op, Load) and op.lane_stride >= 16
            ]
            assert uncoal_loads, name

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_scale_factor(self):
        full = get_benchmark("monte")
        half = get_benchmark("monte", scale=0.5)
        assert half.num_blocks == full.num_blocks // 2
        tiny = get_benchmark("monte", scale=0.001)
        assert tiny.num_blocks == 1

    def test_paper_table4_covers_all(self):
        assert set(PAPER_TABLE4) == set(COMPUTE_BENCHMARKS)

    @pytest.mark.parametrize("name", MEMORY_BENCHMARKS)
    def test_workloads_generate(self, name):
        wl = generate_workload(get_benchmark(name, scale=0.1))
        assert wl.total_warps > 0
        assert wl.total_instructions() > 0
        assert wl.comp_inst > 0 and wl.mem_inst > 0
