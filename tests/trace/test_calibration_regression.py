"""Calibration regression guards.

These pin the qualitative regimes each benchmark was calibrated into
(DESIGN.md §2, benchmarks.py module docstring) at a reduced scale, so a
future change to the timing model that silently breaks a benchmark's
behaviour class fails here rather than only in the slow full benchmarks.
"""

import pytest

from repro.harness.runner import ExperimentRunner

#: (benchmark, scale, CPI bounds) — bounds are wide on purpose: they encode
#: the regime (latency-bound vs bandwidth-bound vs compute-bound), not the
#: calibrated value.
REGIMES = [
    ("monte", 0.5, 8.0, 30.0),      # latency-bound, prefetch-friendly
    ("stream", 0.5, 10.0, 30.0),    # bandwidth-bound
    ("backprop", 0.5, 12.0, 40.0),  # serial-chain latency-bound
    ("cell", 0.5, 6.0, 20.0),
    ("gaussian", 1.0, 4.0, 8.0),    # Table IV: not memory intensive
]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


@pytest.mark.parametrize("name,scale,lo,hi", REGIMES)
def test_baseline_regime(name, scale, lo, hi):
    runner = ExperimentRunner(scale=scale)
    base = runner.run(name)
    assert lo <= base.cpi <= hi, f"{name}: CPI {base.cpi:.2f} left [{lo}, {hi}]"


def test_prefetch_friendliness_ordering():
    """monte must stay more prefetch-friendly than stream."""
    runner = ExperimentRunner(scale=0.5)
    monte = runner.speedup("monte", hardware="mt-hwp")
    stream = runner.speedup("stream", hardware="mt-hwp")
    assert monte > stream
    assert monte > 1.2


def test_ip_targets_mp_type():
    """Software IP must keep helping the chained mp-type benchmark."""
    runner = ExperimentRunner(scale=0.5)
    assert runner.speedup("backprop", software="ip") > 1.15
    assert abs(runner.speedup("monte", software="ip") - 1.0) < 0.1


def test_stride_swp_targets_stride_type():
    runner = ExperimentRunner(scale=0.5)
    assert runner.speedup("monte", software="stride") > 1.3
    assert abs(runner.speedup("backprop", software="stride") - 1.0) < 0.1
