"""Tests for the kernel DSL and trace generation."""

import pytest

from repro.sim.isa import MemSpace, Op
from repro.trace.kernels import Compute, KernelSpec, Load, Store
from repro.trace.swp import IP_SWP, MT_SWP, NO_SWP, REGISTER_SWP, STRIDE_SWP
from repro.trace.tracegen import build_warp_stream, generate_workload


def tiny_spec(**overrides):
    defaults = dict(
        name="tiny",
        suite="test",
        btype="stride",
        threads_per_block=64,
        num_blocks=4,
        body=(
            Load("a", "A", lane_stride=4, iter_stride=1024),
            Compute(1, consumes=("a",)),
            Compute(2),
            Store("out", lane_stride=4, iter_stride=1024),
        ),
        loop_iters=4,
        stride_delinquent=("a",),
        ip_delinquent=("a",),
    )
    defaults.update(overrides)
    return KernelSpec(**defaults)


class TestKernelSpec:
    def test_derived_counts(self):
        spec = tiny_spec()
        assert spec.warps_per_block == 2
        assert spec.total_warps == 8
        assert spec.total_threads == 256

    def test_instruction_mix(self):
        spec = tiny_spec()
        mix = spec.instruction_mix()
        assert mix["comp_inst"] == 2 + 3 * 4  # prologue + 3 computes * 4 iters
        assert mix["mem_inst"] == 2 * 4       # load + store per iteration

    def test_validation_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            tiny_spec(stride_delinquent=("nope",))
        with pytest.raises(ValueError):
            tiny_spec(body=(Load("a", "A"), Compute(1, consumes=("zz",))))
        with pytest.raises(ValueError):
            tiny_spec(threads_per_block=50)

    def test_array_layout_no_overlap(self):
        spec = tiny_spec()
        bases = spec.array_layout()
        assert set(bases) == {"A", "out"}
        extent = (spec.total_threads - 1) * 4 + 3 * 1024 + 64
        assert bases["out"] >= bases["A"] + extent


class TestTraceGeneration:
    def test_stream_structure(self):
        spec = tiny_spec()
        stream = build_warp_stream(spec, warp_id=0, bases=spec.array_layout())
        ops = [inst.op for inst in stream]
        assert ops.count(Op.LOAD) == 4
        assert ops.count(Op.STORE) == 4
        assert ops[:2] == [Op.COMPUTE, Op.COMPUTE]  # prologue

    def test_addresses_follow_strides(self):
        spec = tiny_spec()
        bases = spec.array_layout()
        stream = build_warp_stream(spec, warp_id=1, bases=bases)
        loads = [i for i in stream if i.op == Op.LOAD]
        assert loads[0].base_addr == bases["A"] + 32 * 4  # warp 1 -> tid0=32
        assert loads[1].base_addr == loads[0].base_addr + 1024
        # Coalesced float access: 2 lines per warp.
        assert len(loads[0].lines) == 2

    def test_dependency_tokens(self):
        spec = tiny_spec()
        stream = build_warp_stream(spec, 0, spec.array_layout())
        loads = [i for i in stream if i.op == Op.LOAD]
        consumers = [i for i in stream if i.wait_tokens]
        assert len(consumers) == 4
        for load, consumer in zip(loads, consumers):
            assert consumer.wait_tokens == (load.token,)

    def test_determinism(self):
        spec = tiny_spec()
        s1 = build_warp_stream(spec, 3, spec.array_layout())
        s2 = build_warp_stream(spec, 3, spec.array_layout())
        assert [(i.op, i.pc, i.lines) for i in s1] == [(i.op, i.pc, i.lines) for i in s2]

    def test_workload_shape(self):
        wl = generate_workload(tiny_spec())
        assert wl.total_warps == 8
        assert len(wl.blocks) == 4
        assert wl.max_blocks_per_core >= 1


class TestSoftwarePrefetchTransforms:
    def test_stride_swp_inserts_prefetches(self):
        spec = tiny_spec()
        plain = build_warp_stream(spec, 0, spec.array_layout())
        swp = build_warp_stream(spec, 0, spec.array_layout(), STRIDE_SWP)
        prefetches = [i for i in swp if i.op == Op.PREFETCH]
        # distance 1, 4 iterations: prefetch on iterations 0..2.
        assert len(prefetches) == 3
        assert len(swp) == len(plain) + 3

    def test_stride_prefetch_targets_next_iteration(self):
        spec = tiny_spec()
        bases = spec.array_layout()
        swp = build_warp_stream(spec, 0, bases, STRIDE_SWP)
        first_pf = next(i for i in swp if i.op == Op.PREFETCH)
        first_ld = next(i for i in swp if i.op == Op.LOAD)
        assert first_pf.base_addr == first_ld.base_addr + 1024

    def test_ip_prefetch_targets_next_warp(self):
        spec = tiny_spec()
        bases = spec.array_layout()
        swp0 = build_warp_stream(spec, 0, bases, IP_SWP)
        plain1 = build_warp_stream(spec, 1, bases, NO_SWP)
        pf = next(i for i in swp0 if i.op == Op.PREFETCH)
        target_load = next(i for i in plain1 if i.op == Op.LOAD)
        assert set(pf.lines) == set(target_load.lines)

    def test_ip_prefetch_is_first_instruction(self):
        spec = tiny_spec()
        swp = build_warp_stream(spec, 0, spec.array_layout(), IP_SWP)
        assert swp[0].op == Op.PREFETCH

    def test_mt_swp_combines_both(self):
        spec = tiny_spec()
        swp = build_warp_stream(spec, 0, spec.array_layout(), MT_SWP)
        prefetches = [i for i in swp if i.op == Op.PREFETCH]
        assert len(prefetches) == 4  # 3 stride + 1 ip

    def test_register_prefetch_restructures_loop(self):
        spec = tiny_spec()
        stream = build_warp_stream(spec, 0, spec.array_layout(), REGISTER_SWP)
        loads = [i for i in stream if i.op == Op.LOAD]
        assert len(loads) == 4  # preload + iters 1..3 hoisted
        # The first load appears before the loop body's first store.
        first_store = next(k for k, i in enumerate(stream) if i.op == Op.STORE)
        first_load = next(k for k, i in enumerate(stream) if i.op == Op.LOAD)
        assert first_load < first_store

    def test_register_prefetch_raises_register_usage(self):
        spec = tiny_spec()
        plain = generate_workload(spec, NO_SWP)
        reg = generate_workload(spec, REGISTER_SWP)
        assert reg.resources.regs_per_thread > plain.resources.regs_per_thread

    def test_register_prefetch_ignored_without_loop(self):
        spec = tiny_spec(loop_iters=0, btype="mp")
        plain = build_warp_stream(spec, 0, spec.array_layout(), NO_SWP)
        reg = build_warp_stream(spec, 0, spec.array_layout(), REGISTER_SWP)
        assert len(plain) == len(reg)

    def test_chained_ip_prefetches_are_pipelined(self):
        spec = tiny_spec(
            loop_iters=0,
            btype="mp",
            body=(
                Load("a", "A", lane_stride=4),
                Compute(1, consumes=("a",)),
                Load("b", "B", lane_stride=4),
                Compute(1, consumes=("b",)),
            ),
            stride_delinquent=(),
            ip_delinquent=("a", "b"),
        )
        swp = build_warp_stream(spec, 0, spec.array_layout(), IP_SWP)
        kinds = [i.op for i in swp]
        # prefetch(a') first; prefetch(b') right after load a.
        first_load = kinds.index(Op.LOAD)
        assert kinds[0] == Op.PREFETCH
        assert kinds[first_load + 1] == Op.PREFETCH
