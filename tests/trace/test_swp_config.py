"""Tests for the software prefetch scheme definitions."""

import pytest

from repro.trace.swp import (
    IP_SWP,
    MT_SWP,
    NO_SWP,
    REGISTER_SWP,
    SCHEMES,
    STRIDE_SWP,
    SoftwarePrefetchConfig,
    with_distance,
)


def test_named_schemes_flags():
    assert not NO_SWP.any_enabled
    assert REGISTER_SWP.register and not REGISTER_SWP.stride
    assert STRIDE_SWP.stride and not STRIDE_SWP.ip
    assert IP_SWP.ip and not IP_SWP.stride
    assert MT_SWP.stride and MT_SWP.ip and not MT_SWP.register


def test_scheme_registry_complete():
    assert set(SCHEMES) == {"none", "register", "stride", "ip", "mt-swp"}
    assert SCHEMES["mt-swp"] is MT_SWP


def test_describe():
    assert NO_SWP.describe() == "none"
    assert MT_SWP.describe() == "stride+ip"
    assert SoftwarePrefetchConfig(register=True, ip=True).describe() == "register+ip"


def test_with_distance_copies():
    far = with_distance(STRIDE_SWP, 5)
    assert far.distance == 5
    assert far.stride
    assert STRIDE_SWP.distance == 1  # original untouched


def test_configs_are_hashable_and_frozen():
    {MT_SWP: 1}
    with pytest.raises(Exception):
        MT_SWP.stride = False


def test_default_ip_warp_distance_matches_paper():
    """Fig. 4's tid + 32 idiom: one warp ahead."""
    assert MT_SWP.ip_warp_distance == 1
